package strategy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

// testbed returns the paper's two rails as RailViews, both idle at t=0.
func testbed() []RailView {
	m, q := model.Myri10G(), model.QsNetII()
	return []RailView{
		{Index: 0, Est: ModelEstimator{m}, EagerMax: m.EagerMax},
		{Index: 1, Est: ModelEstimator{q}, EagerMax: q.EagerMax},
	}
}

func TestValidateAcceptsAndRejects(t *testing.T) {
	if err := Validate(10, []Chunk{{0, 0, 4}, {1, 4, 6}}); err != nil {
		t.Fatal(err)
	}
	bad := [][]Chunk{
		nil,                     // no chunks
		{{0, 0, 4}},             // short
		{{0, 0, 4}, {1, 5, 5}},  // gap
		{{0, 0, 4}, {1, 3, 7}},  // overlap
		{{0, 0, 0}, {1, 0, 10}}, // empty chunk
		{{0, 0, 4}, {1, 4, 7}},  // overshoot
	}
	for i, c := range bad {
		if err := Validate(10, c); err == nil {
			t.Errorf("case %d accepted: %v", i, c)
		}
	}
	if err := Validate(0, nil); err != nil {
		t.Errorf("empty message: %v", err)
	}
}

func TestSingleRailPicksFastest(t *testing.T) {
	rails := testbed()
	// Large message: Myri-10G (rail 0) has the higher bandwidth.
	chunks := SingleRail{}.Split(4<<20, 0, rails)
	if len(chunks) != 1 || chunks[0].Rail != 0 {
		t.Fatalf("4MB: %+v, want all on rail 0", chunks)
	}
	// Tiny message: QsNetII (rail 1) has the lower latency.
	chunks = SingleRail{}.Split(4, 0, rails)
	if len(chunks) != 1 || chunks[0].Rail != 1 {
		t.Fatalf("4B: %+v, want all on rail 1", chunks)
	}
}

// Fig 2: an idle NIC is discarded when a busy one will finish first.
func TestSingleRailPrefersBusyButFasterNIC(t *testing.T) {
	m, q := model.Myri10G(), model.QsNetII()
	n := 4 << 20
	// Myri busy for 500µs; still finishes the 4MB before idle QsNetII:
	// 500µs + ~3.4ms < ~4.8ms.
	rails := []RailView{
		{Index: 0, Est: ModelEstimator{m}, IdleAt: us(500)},
		{Index: 1, Est: ModelEstimator{q}, IdleAt: 0},
	}
	chunks := SingleRail{}.Split(n, 0, rails)
	if chunks[0].Rail != 0 {
		t.Fatalf("busy-but-faster NIC not selected: %+v", chunks)
	}
	// With a very long busy horizon the idle NIC wins.
	rails[0].IdleAt = us(5000)
	chunks = SingleRail{}.Split(n, 0, rails)
	if chunks[0].Rail != 1 {
		t.Fatalf("idle NIC not selected under long horizon: %+v", chunks)
	}
}

func TestIsoSplitEqualChunks(t *testing.T) {
	rails := testbed()
	chunks := IsoSplit{}.Split(4<<20, 0, rails)
	if err := Validate(4<<20, chunks); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || chunks[0].Size != chunks[1].Size {
		t.Fatalf("iso chunks %+v", chunks)
	}
	// Remainder distribution.
	chunks = IsoSplit{}.Split(5, 0, rails)
	if err := Validate(5, chunks); err != nil {
		t.Fatal(err)
	}
	if chunks[0].Size != 3 || chunks[1].Size != 2 {
		t.Fatalf("iso remainder %+v", chunks)
	}
	// Message smaller than rail count.
	chunks = IsoSplit{}.Split(1, 0, rails)
	if err := Validate(1, chunks); err != nil {
		t.Fatal(err)
	}
}

// Paper checkpoint (Fig 8): the equal-completion split of a 4 MB message
// is ~2437 KB on Myri-10G and ~1757 KB on Quadrics, each finishing in
// ~2000 µs.
func TestHeteroSplitPaperCheckpoint4MB(t *testing.T) {
	rails := testbed()
	n := 4 << 20
	chunks := HeteroSplit{}.Split(n, 0, rails)
	if err := Validate(n, chunks); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("chunks: %+v", chunks)
	}
	var myri, quad Chunk
	for _, c := range chunks {
		if c.Rail == 0 {
			myri = c
		} else {
			quad = c
		}
	}
	if math.Abs(float64(myri.Size)/1e3-2437) > 2437*0.015 {
		t.Errorf("Myri chunk %.0f KB, paper 2437 KB", float64(myri.Size)/1e3)
	}
	if math.Abs(float64(quad.Size)/1e3-1757) > 1757*0.015 {
		t.Errorf("Quadrics chunk %.0f KB, paper 1757 KB", float64(quad.Size)/1e3)
	}
	tm := rails[0].Est.Estimate(myri.Size)
	tq := rails[1].Est.Estimate(quad.Size)
	if math.Abs(tm.Seconds()*1e6-1999) > 1999*0.01 {
		t.Errorf("Myri chunk time %.0fµs, paper 1999µs", tm.Seconds()*1e6)
	}
	if math.Abs(tq.Seconds()*1e6-2001) > 2001*0.01 {
		t.Errorf("Quadrics chunk time %.0fµs, paper 2001µs", tq.Seconds()*1e6)
	}
	// Equal completion: the two chunk times differ by far less than the
	// iso split's 670µs idle gap.
	if skew := (tm - tq).Abs(); skew > us(5) {
		t.Errorf("completion skew %v, want <5µs", skew)
	}
}

// Fig 2 with splitting: a rail that stays busy past the common completion
// receives no chunk.
func TestHeteroSplitDiscardsLongBusyRail(t *testing.T) {
	rails := testbed()
	n := 256 << 10
	// Rail 0 busy for 10ms — far beyond the ~300µs the idle rail needs.
	rails[0].IdleAt = 10 * time.Millisecond
	chunks := HeteroSplit{}.Split(n, 0, rails)
	if err := Validate(n, chunks); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if c.Rail == 0 {
			t.Fatalf("busy rail received a chunk: %+v", chunks)
		}
	}
}

// A briefly-busy fast rail still participates, with a smaller share.
func TestHeteroSplitShrinksBusyRailShare(t *testing.T) {
	n := 4 << 20
	idle := HeteroSplit{}.Split(n, 0, testbed())
	busy := testbed()
	busy[0].IdleAt = us(300)
	delayed := HeteroSplit{}.Split(n, 0, busy)
	if err := Validate(n, delayed); err != nil {
		t.Fatal(err)
	}
	share := func(chunks []Chunk, rail int) int {
		for _, c := range chunks {
			if c.Rail == rail {
				return c.Size
			}
		}
		return 0
	}
	if share(delayed, 0) >= share(idle, 0) {
		t.Fatalf("busy rail share %d not below idle share %d", share(delayed, 0), share(idle, 0))
	}
	// And the busy split's predicted completion accounts for the wait.
	pc := PredictedCompletion(0, busy, delayed)
	pcIdle := PredictedCompletion(0, testbed(), idle)
	if pc <= pcIdle {
		t.Fatalf("busy completion %v not above idle completion %v", pc, pcIdle)
	}
}

// The k-rail bisection agrees with the paper's two-rail ratio dichotomy.
func TestHeteroSplitMatchesRatioDichotomy(t *testing.T) {
	for _, n := range []int{64 << 10, 1 << 20, 4 << 20, 8 << 20} {
		rails := testbed()
		chunks := HeteroSplit{}.Split(n, 0, rails)
		ratio := SplitRatioDichotomy(n, 0, rails[0], rails[1], 50)
		var m int
		for _, c := range chunks {
			if c.Rail == 0 {
				m = c.Size
			}
		}
		if got := float64(m) / float64(n); math.Abs(got-ratio) > 0.01 {
			t.Errorf("n=%d: bisection share %.4f vs dichotomy ratio %.4f", n, got, ratio)
		}
	}
}

func TestHeteroSplitMinChunkFoldsSlivers(t *testing.T) {
	rails := testbed()
	// A 4KB message would naturally put ~45% on the slow rail; a MinChunk
	// above that share forces a single chunk.
	chunks := HeteroSplit{MinChunk: 4096}.Split(4096+32, 0, rails)
	if err := Validate(4096+32, chunks); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Fatalf("slivers not folded: %+v", chunks)
	}
}

func TestHeteroSplitThreeRails(t *testing.T) {
	m, q, ib := model.Myri10G(), model.QsNetII(), model.IBVerbs()
	rails := []RailView{
		{Index: 0, Est: ModelEstimator{m}},
		{Index: 1, Est: ModelEstimator{q}},
		{Index: 2, Est: ModelEstimator{ib}},
	}
	n := 8 << 20
	chunks := HeteroSplit{}.Split(n, 0, rails)
	if err := Validate(n, chunks); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks, got %+v", chunks)
	}
	// Completion must beat the best 2-rail split (more aggregate
	// bandwidth) and the chunk completions must be near-equal.
	var worst, best time.Duration
	for i, c := range chunks {
		ct := rails[c.Rail].Est.Estimate(c.Size)
		if i == 0 || ct > worst {
			worst = ct
		}
		if i == 0 || ct < best {
			best = ct
		}
	}
	if worst-best > us(10) {
		t.Fatalf("3-rail completion skew %v", worst-best)
	}
	two := HeteroSplit{}.Split(n, 0, rails[:2])
	if PredictedCompletion(0, rails, chunks) >= PredictedCompletion(0, rails[:2], two) {
		t.Fatal("3 rails not faster than 2")
	}
}

// §II-A: the fixed ratio computed at 8MB mis-fits smaller messages — the
// sampling-based split always predicts an equal-or-better completion.
func TestRatioSplitMisfitsAcrossSizes(t *testing.T) {
	rails := testbed()
	fixed := NewRatioSplit(8<<20, rails)
	var sum float64
	for _, w := range fixed.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum %v", sum)
	}
	worse := 0
	for _, n := range []int{64 << 10, 256 << 10, 1 << 20, 8 << 20} {
		fc := fixed.Split(n, 0, rails)
		hc := HeteroSplit{}.Split(n, 0, rails)
		if err := Validate(n, fc); err != nil {
			t.Fatal(err)
		}
		ft := PredictedCompletion(0, rails, fc)
		ht := PredictedCompletion(0, rails, hc)
		if ht > ft {
			t.Errorf("n=%d: hetero %v worse than fixed %v", n, ht, ft)
		}
		if ft > ht {
			worse++
		}
	}
	if worse == 0 {
		t.Error("fixed ratio never mis-fit; the §II-A criticism should show at small sizes")
	}
	// The fixed ratio also ignores NIC state.
	busy := testbed()
	busy[0].IdleAt = 10 * time.Millisecond
	fc := fixed.Split(1<<20, 0, busy)
	onBusy := false
	for _, c := range fc {
		if c.Rail == 0 {
			onBusy = true
		}
	}
	if !onBusy {
		t.Error("fixed ratio unexpectedly adapted to NIC state")
	}
}

func TestAssignGreedyBalancesOnIdle(t *testing.T) {
	rails := testbed()
	// Two equal packets, both rails idle: they must go to different rails.
	got := AssignGreedy([]int{8192, 8192}, 0, rails)
	if got[0] == got[1] {
		t.Fatalf("greedy put both packets on rail %d", got[0])
	}
	// With rail 0 busy, the first packet goes to rail 1.
	rails[0].IdleAt = us(100)
	got = AssignGreedy([]int{64, 64, 64}, 0, rails)
	if got[0] != 1 {
		t.Fatalf("first packet on rail %d, want idle rail 1", got[0])
	}
	// Horizon advances: not all three land on rail 1 unless rail 0 stays
	// further out.
	all1 := got[0] == 1 && got[1] == 1 && got[2] == 1
	if all1 {
		t.Log("all packets on rail 1 (rail 0 busy horizon dominates); acceptable")
	}
}

func TestPlanEagerTinyStaysSingle(t *testing.T) {
	plan := PlanEager(4, 0, testbed(), 4, model.OffloadSyncCost)
	if plan.Parallel {
		t.Fatalf("4B message planned parallel: %+v", plan)
	}
	if plan.Chunks[0].Rail != 1 {
		t.Fatalf("4B not aggregated on the low-latency rail: %+v", plan)
	}
}

func TestPlanEagerMediumGoesParallel(t *testing.T) {
	n := 16 << 10
	single := PlanEager(n, 0, testbed(), 1, model.OffloadSyncCost)
	if single.Parallel {
		t.Fatal("parallel plan with a single idle core")
	}
	plan := PlanEager(n, 0, testbed(), 4, model.OffloadSyncCost)
	if !plan.Parallel {
		t.Fatalf("16KB with idle cores should go parallel: %+v", plan)
	}
	if err := Validate(n, plan.Chunks); err != nil {
		t.Fatal(err)
	}
	gain := 1 - float64(plan.Predicted)/float64(single.Predicted)
	if gain < 0.15 || gain > 0.45 {
		t.Fatalf("parallel gain %.0f%% at 16KB, want roughly 20-40%% (paper: up to 30%%)", gain*100)
	}
}

func TestPlanEagerHonorsMinIdleNICsIdleCores(t *testing.T) {
	m, q, ib := model.Myri10G(), model.QsNetII(), model.IBVerbs()
	rails := []RailView{
		{Index: 0, Est: ModelEstimator{m}, EagerMax: m.EagerMax},
		{Index: 1, Est: ModelEstimator{q}, EagerMax: q.EagerMax},
		{Index: 2, Est: ModelEstimator{ib}, EagerMax: ib.EagerMax},
	}
	plan := PlanEager(24<<10, 0, rails, 2, model.OffloadSyncCost)
	if len(plan.Chunks) > 2 {
		t.Fatalf("%d chunks with only 2 idle cores (min rule violated)", len(plan.Chunks))
	}
	// A busy NIC reduces the idle-NIC count.
	rails[0].IdleAt = us(1000)
	rails[1].IdleAt = us(1000)
	plan = PlanEager(24<<10, 0, rails, 4, model.OffloadSyncCost)
	if plan.Parallel {
		t.Fatalf("parallel with one idle NIC: %+v", plan)
	}
}

func TestPlanEagerRespectsEagerMax(t *testing.T) {
	// Rails whose eager limit is tiny cannot take parallel chunks.
	m, q := model.Myri10G(), model.QsNetII()
	rails := []RailView{
		{Index: 0, Est: ModelEstimator{m}, EagerMax: 512},
		{Index: 1, Est: ModelEstimator{q}, EagerMax: 512},
	}
	plan := PlanEager(16<<10, 0, rails, 4, model.OffloadSyncCost)
	if plan.Parallel {
		t.Fatalf("parallel chunks exceed EagerMax: %+v", plan)
	}
}

func TestPlanEagerPreemptCostShiftsDecision(t *testing.T) {
	// Near the crossover, the 6µs preemption cost can flip the decision
	// that the 3µs sync cost allows.
	n := 6 << 10
	sync := PlanEager(n, 0, testbed(), 4, model.OffloadSyncCost)
	preempt := PlanEager(n, 0, testbed(), 4, model.OffloadPreemptCost)
	if !sync.Parallel {
		t.Skip("6KB not parallel under sync cost; calibration moved")
	}
	if preempt.Parallel && preempt.Predicted >= sync.Predicted+3*time.Microsecond {
		t.Fatal("preempt plan did not absorb the extra cost")
	}
}

func TestModelEstimatorSizeFor(t *testing.T) {
	est := ModelEstimator{model.Myri10G()}
	for _, d := range []time.Duration{us(3), us(10), us(100), us(5000)} {
		n := est.SizeFor(d, 32<<20)
		if est.Estimate(n) > d {
			t.Fatalf("SizeFor(%v)=%d estimates %v", d, n, est.Estimate(n))
		}
		if n < 32<<20 && est.Estimate(n+1) <= d {
			t.Fatalf("SizeFor(%v)=%d not maximal", d, n)
		}
	}
	if est.SizeFor(0, 100) != 0 {
		t.Fatal("zero budget")
	}
}

// Property: every splitter yields a valid cover for arbitrary sizes and
// busy horizons.
func TestPropertySplittersAlwaysValid(t *testing.T) {
	splitters := []Splitter{
		SingleRail{},
		IsoSplit{},
		HeteroSplit{},
		HeteroSplit{MinChunk: 4096},
	}
	f := func(seed int64, nRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % (16 << 20))
		rails := testbed()
		for i := range rails {
			if rng.Intn(2) == 1 {
				rails[i].IdleAt = time.Duration(rng.Intn(3000)) * time.Microsecond
			}
		}
		now := time.Duration(rng.Intn(1000)) * time.Microsecond
		for i := range rails {
			rails[i].IdleAt += now / 2 // some before now, some after
		}
		for _, s := range splitters {
			if err := Validate(n, s.Split(n, now, rails)); err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
		}
		fixed := NewRatioSplit(8<<20, rails)
		return Validate(n, fixed.Split(n, now, rails)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: hetero-split never predicts worse than single-rail (it can
// always degenerate to one chunk).
func TestPropertyHeteroNeverWorseThanSingle(t *testing.T) {
	f := func(nRaw uint32, busyRaw uint16) bool {
		n := int(nRaw%(8<<20)) + 1
		rails := testbed()
		rails[0].IdleAt = time.Duration(busyRaw) * time.Microsecond
		h := HeteroSplit{}.Split(n, 0, rails)
		s := SingleRail{}.Split(n, 0, rails)
		// Allow 1µs slack for discretisation at bisection boundaries.
		return PredictedCompletion(0, rails, h) <= PredictedCompletion(0, rails, s)+us(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hetero-split chunk completions are equal within tolerance
// whenever more than one rail participates.
func TestPropertyHeteroEqualCompletion(t *testing.T) {
	f := func(nRaw uint32) bool {
		n := int(nRaw%(8<<20)) + 64<<10
		rails := testbed()
		chunks := HeteroSplit{}.Split(n, 0, rails)
		if len(chunks) < 2 {
			return true
		}
		var lo, hi time.Duration
		for i, c := range chunks {
			ct := rails[c.Rail].Completion(0, c.Size)
			if i == 0 || ct < lo {
				lo = ct
			}
			if i == 0 || ct > hi {
				hi = ct
			}
		}
		// Tolerance: a handful of bytes' worth of time on the slowest rail.
		return hi-lo <= us(5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Every splitter excludes rails marked Down (the rail-health view of a
// dying NIC): no chunk may land on one while a usable rail remains.
func TestSplittersExcludeDownRails(t *testing.T) {
	rails := testbed()
	rails[0].Down = true // kill the high-bandwidth rail
	splitters := []Splitter{SingleRail{}, IsoSplit{}, HeteroSplit{}, NewRatioSplit(1<<20, testbed())}
	for _, s := range splitters {
		for _, n := range []int{4, 64 << 10, 4 << 20} {
			chunks := s.Split(n, 0, rails)
			if err := Validate(n, chunks); err != nil {
				t.Fatalf("%s/%d: %v", s.Name(), n, err)
			}
			for _, c := range chunks {
				if c.Rail == 0 {
					t.Fatalf("%s placed %d bytes on the Down rail: %+v", s.Name(), n, chunks)
				}
			}
		}
	}
}

// AssignGreedy and PlanEager honour the Down mark too.
func TestEagerPathsExcludeDownRails(t *testing.T) {
	rails := testbed()
	rails[1].Down = true
	assign := AssignGreedy([]int{64, 64, 64}, 0, rails)
	for i, r := range assign {
		if r == 1 {
			t.Fatalf("greedy packet %d on the Down rail", i)
		}
	}
	plan := PlanEager(16<<10, 0, rails, 4, model.OffloadSyncCost)
	for _, c := range plan.Chunks {
		if c.Rail == 1 {
			t.Fatalf("eager plan used the Down rail: %+v", plan.Chunks)
		}
	}
}

// With every rail Down the strategies fall back to the full set: the
// engine decides separately whether to send, and a decision must exist.
func TestAllDownFallsBackToAll(t *testing.T) {
	rails := testbed()
	rails[0].Down, rails[1].Down = true, true
	chunks := HeteroSplit{}.Split(1<<20, 0, rails)
	if err := Validate(1<<20, chunks); err != nil {
		t.Fatal(err)
	}
}
