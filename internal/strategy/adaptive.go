package strategy

import (
	"sync"
	"time"
)

// Mode identifies one of the adaptive chooser's scheduling modes.
type Mode int

const (
	// ModeSingle: the whole message on the single best rail.
	ModeSingle Mode = iota
	// ModeSplit: striped over rails by the multi-rail splitter.
	ModeSplit
	// ModeParallel: eager chunks submitted from parallel cores (§III-D).
	ModeParallel

	numModes
)

func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeSplit:
		return "split"
	case ModeParallel:
		return "parallel"
	default:
		return "mode?"
	}
}

// OutcomeObserver is implemented by strategies that learn from
// completed transfers. The engine feeds it the remote-completion time
// of every message sent in adaptive mode, tagged with the mode that
// scheduled it.
type OutcomeObserver interface {
	ObserveOutcome(n int, mode Mode, d time.Duration)
}

// Adaptive is the telemetry-driven chooser: per size class it picks
// single-rail vs. striped (and, on the eager path, parallel-core
// submission) from the *observed* outcomes of previous transfers,
// falling back to the model predictions while a mode has too little
// data. Combined with live RailView estimators this closes the paper's
// open loop: predictions propose, measurements dispose.
//
// It implements Splitter for the rendezvous path and OutcomeObserver
// for the feedback; the zero value is usable (SingleRail vs HeteroSplit,
// sensible defaults).
type Adaptive struct {
	// Single is the one-rail strategy (default SingleRail).
	Single Splitter
	// Multi is the striping strategy (default HeteroSplit).
	Multi Splitter
	// MinObs is how many outcomes a mode needs in a size class before
	// its observed score is trusted over the prediction (default 3).
	MinObs int
	// ProbeEvery makes every n-th eager decision (PreferParallel) per
	// size class take the non-preferred mode, so the loser keeps
	// producing outcomes and can win again when conditions change
	// (default 8; larger probes less). Rendezvous-path probing is
	// engine-driven instead — the engine calls LoserSplit outside its
	// plan cache — because a probe result must never be cached.
	ProbeEvery int
	// OnVerdictChange, when non-nil, is called (without the chooser's
	// lock) whenever observed outcomes flip a size class's warm
	// single-vs-split verdict. The engine wires it to the telemetry
	// epoch so plans cached under the old verdict go stale immediately
	// — otherwise a cache hit would keep serving the rejected mode.
	// Set it at construction, before the chooser is in use; to attach
	// once outcomes may already be flowing (e.g. a chooser shared with
	// an earlier cluster), use ChainVerdictChange.
	OnVerdictChange func()

	mu      sync.Mutex
	buckets map[int]*modeStats
}

// modeStats is one size class's outcome memory.
type modeStats struct {
	nsPerByte [numModes]float64 // EWMA of observed ns/byte
	count     [numModes]int
	decisions int
	verdict   Mode // last warm single-vs-split verdict (verdictKnown)

	verdictKnown bool
}

func (a *Adaptive) single() Splitter {
	if a.Single != nil {
		return a.Single
	}
	return SingleRail{}
}

func (a *Adaptive) multi() Splitter {
	if a.Multi != nil {
		return a.Multi
	}
	return HeteroSplit{}
}

func (a *Adaptive) minObs() int {
	if a.MinObs > 0 {
		return a.MinObs
	}
	return 3
}

func (a *Adaptive) probeEvery() int {
	if a.ProbeEvery > 0 {
		return a.ProbeEvery
	}
	return 8
}

// bucketAt returns the stats stored under a namespace key, creating it
// under the lock.
func (a *Adaptive) bucketAt(key int) *modeStats {
	if a.buckets == nil {
		a.buckets = make(map[int]*modeStats)
	}
	s := a.buckets[key]
	if s == nil {
		s = &modeStats{}
		a.buckets[key] = s
	}
	return s
}

// eagerKey maps a size class into the eager-path outcome namespace
// (mirrored negative keys). Eager and rendezvous completions of one
// size class are NOT comparable — an eager send pays no handshake — and
// with a live threshold moving inside a size class both protocols can
// serve it at once; sharing a cell would let cheap eager completions
// pin the rendezvous single-vs-split verdict to ModeSingle forever.
func eagerKey(n int) int { return -sizeClass(n) - 1 }

// sizeClass mirrors telemetry.SizeBucket without importing it (strategy
// is a leaf package): log2 buckets.
func sizeClass(n int) int {
	c := 0
	for v := uint(n); v != 0; v >>= 1 {
		c++
	}
	return c
}

// Name implements Splitter.
func (a *Adaptive) Name() string { return "adaptive" }

// Split implements Splitter: compute both candidate schedules from the
// (live) rail views, score each mode by observed outcome where warm and
// by predicted completion where not, and emit the winner's chunks. It
// never probes and mutates no decision state, so callers may cache its
// result and diagnostics (Engine.PlanFor) may call it freely.
func (a *Adaptive) Split(n int, now time.Duration, rails []RailView) []Chunk {
	winner, _ := a.pick(n, now, rails, false)
	return winner
}

// LoserSplit returns the schedule of the mode Split would currently
// reject, and which mode that is. The engine sends an occasional
// message this way — outside its plan cache — so the losing mode keeps
// producing outcomes and can win again when conditions change; the
// result must never be cached.
func (a *Adaptive) LoserSplit(n int, now time.Duration, rails []RailView) ([]Chunk, Mode) {
	return a.pick(n, now, rails, true)
}

// pick scores both rendezvous modes and returns the winner's (or, for
// probes, the loser's) chunks.
func (a *Adaptive) pick(n int, now time.Duration, rails []RailView, loser bool) ([]Chunk, Mode) {
	if n == 0 {
		return nil, ModeSingle
	}
	rails = Usable(rails)
	singleChunks := a.single().Split(n, now, rails)
	multiChunks := a.multi().Split(n, now, rails)
	if len(multiChunks) <= 1 {
		// The striping strategy itself collapsed to one rail: nothing to
		// choose between.
		return multiChunks, ModeSingle
	}
	predSingle := PredictedCompletion(now, rails, singleChunks)
	predMulti := PredictedCompletion(now, rails, multiChunks)

	a.mu.Lock()
	s := a.bucketAt(sizeClass(n))
	scoreSingle := s.score(ModeSingle, predSingle, n, a.minObs())
	scoreMulti := s.score(ModeSplit, predMulti, n, a.minObs())
	a.mu.Unlock()

	preferMulti := scoreMulti < scoreSingle
	if loser {
		preferMulti = !preferMulti
	}
	if preferMulti {
		return multiChunks, ModeSplit
	}
	return singleChunks, ModeSingle
}

// score is a mode's comparable cost in ns/byte: the observed EWMA when
// warm, the prediction otherwise. Caller holds a.mu.
func (s *modeStats) score(m Mode, pred time.Duration, n, minObs int) float64 {
	if s.count[m] >= minObs {
		return s.nsPerByte[m]
	}
	return float64(pred.Nanoseconds()) / float64(n)
}

// ObserveOutcome implements OutcomeObserver: fold one completed
// rendezvous-path transfer's remote-completion time into its
// (size class, mode) EWMA.
func (a *Adaptive) ObserveOutcome(n int, mode Mode, d time.Duration) {
	a.observe(sizeClass(n), n, mode, d, true)
}

// ObserveEagerOutcome folds an eager-path completion into the eager
// outcome namespace (what PreferParallel scores). Kept apart from the
// rendezvous outcomes: see eagerKey.
func (a *Adaptive) ObserveEagerOutcome(n int, mode Mode, d time.Duration) {
	a.observe(eagerKey(n), n, mode, d, false)
}

func (a *Adaptive) observe(key, n int, mode Mode, d time.Duration, verdict bool) {
	if n <= 0 || d <= 0 || mode < 0 || mode >= numModes {
		return
	}
	perByte := float64(d.Nanoseconds()) / float64(n)
	a.mu.Lock()
	s := a.bucketAt(key)
	if s.count[mode] == 0 {
		s.nsPerByte[mode] = perByte
	} else {
		// Half-weight EWMA: a losing mode is observed only through the
		// engine's occasional probes, so each probe must move its score
		// materially or a stale verdict outlives the regime that earned
		// it (e.g. "split is terrible" measured while a rail was
		// congested).
		s.nsPerByte[mode] = 0.5*s.nsPerByte[mode] + 0.5*perByte
	}
	s.count[mode]++
	// Track the warm single-vs-split verdict so a flip can invalidate
	// plans cached under the old one (rendezvous namespace only).
	flipped := false
	if verdict && s.count[ModeSingle] >= a.minObs() && s.count[ModeSplit] >= a.minObs() {
		v := ModeSingle
		if s.nsPerByte[ModeSplit] < s.nsPerByte[ModeSingle] {
			v = ModeSplit
		}
		flipped = s.verdictKnown && v != s.verdict
		s.verdict, s.verdictKnown = v, true
	}
	cb := a.OnVerdictChange // read under the lock: ChainVerdictChange may rebind it
	a.mu.Unlock()
	if flipped && cb != nil {
		cb()
	}
}

// ChainVerdictChange appends fn to the verdict-flip callback chain,
// safely against concurrent ObserveOutcome calls; previously attached
// callbacks keep firing. Used when one chooser serves several clusters
// (each must invalidate its own cached plans on a flip).
func (a *Adaptive) ChainVerdictChange(fn func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	prev := a.OnVerdictChange
	if prev == nil {
		a.OnVerdictChange = fn
		return
	}
	a.OnVerdictChange = func() { prev(); fn() }
}

// PreferParallel decides the eager-path mode: whether the parallel
// multicore submission (ModeParallel) should be taken over single-rail
// aggregation, given the two predictions — observed outcomes override
// the model once both modes are warm. The engine calls it only when a
// parallel plan is structurally possible (enough idle NICs and cores).
func (a *Adaptive) PreferParallel(n int, predParallel, predSingle time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.bucketAt(eagerKey(n))
	s.decisions++
	if s.decisions%a.probeEvery() == 0 {
		// Probe: take the mode the scores would reject.
		return !(s.score(ModeParallel, predParallel, n, a.minObs()) <
			s.score(ModeSingle, predSingle, n, a.minObs()))
	}
	return s.score(ModeParallel, predParallel, n, a.minObs()) <
		s.score(ModeSingle, predSingle, n, a.minObs())
}
