package strategy

import (
	"math"
	"sort"
	"time"
)

// SingleRail sends the whole message on the rail with the earliest
// predicted completion. Because the prediction includes each NIC's idle
// horizon, a busy-but-fast NIC can beat an idle-but-slow one — the
// decision of Fig 2.
type SingleRail struct{}

// Name implements Splitter.
func (SingleRail) Name() string { return "single-rail" }

// Split implements Splitter.
func (SingleRail) Split(n int, now time.Duration, rails []RailView) []Chunk {
	if n == 0 {
		return nil
	}
	rails = Usable(rails)
	best := 0
	bestT := rails[0].Completion(now, n)
	for i := 1; i < len(rails); i++ {
		if t := rails[i].Completion(now, n); t < bestT {
			best, bestT = i, t
		}
	}
	return []Chunk{{Rail: rails[best].Index, Offset: 0, Size: n}}
}

// IsoSplit cuts the message into equal chunks, one per rail (Fig 1b).
// The remainder goes to the first rails.
type IsoSplit struct{}

// Name implements Splitter.
func (IsoSplit) Name() string { return "iso-split" }

// Split implements Splitter.
func (IsoSplit) Split(n int, now time.Duration, rails []RailView) []Chunk {
	if n == 0 {
		return nil
	}
	rails = Usable(rails)
	k := len(rails)
	if k > n {
		k = n // at most one byte per chunk
	}
	base := n / k
	rem := n % k
	chunks := make([]Chunk, 0, k)
	off := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		chunks = append(chunks, Chunk{Rail: rails[i].Index, Offset: off, Size: size})
		off += size
	}
	return chunks
}

// HeteroSplit sizes the chunks so that every participating rail is
// predicted to finish at the same instant (Fig 1c), taking each NIC's
// remaining busy time into account (Fig 2). The equal-completion point is
// found by bisection on the completion time, which generalises the
// paper's two-rail ratio dichotomy to any number of rails; rails that
// cannot contribute before the common completion receive no chunk and
// are thereby discarded, exactly as §II-B prescribes.
type HeteroSplit struct {
	// MinChunk suppresses chunks smaller than this (0 = 1 byte). Tiny
	// slivers cost more in per-chunk overhead than they save.
	MinChunk int
	// MaxIter bounds the bisection (0 = 64, enough for nanosecond
	// precision over any practical horizon).
	MaxIter int
}

// Name implements Splitter.
func (h HeteroSplit) Name() string { return "hetero-split" }

// Split implements Splitter.
func (h HeteroSplit) Split(n int, now time.Duration, rails []RailView) []Chunk {
	if n == 0 {
		return nil
	}
	rails = Usable(rails)
	minChunk := h.MinChunk
	if minChunk < 1 {
		minChunk = 1
	}
	// capacity(T) = total bytes the rails can complete by now+T.
	capacity := func(T time.Duration) int {
		total := 0
		for i := range rails {
			total += h.railCap(&rails[i], now, T, n)
		}
		return total
	}
	// Upper bound: the best single-rail completion always suffices.
	hi := rails[0].Completion(now, n)
	for i := 1; i < len(rails); i++ {
		if t := rails[i].Completion(now, n); t < hi {
			hi = t
		}
	}
	if capacity(hi) < n {
		// Estimators can be slightly non-inverting at the boundary; fall
		// back to the single best rail.
		return SingleRail{}.Split(n, now, rails)
	}
	lo := time.Duration(0)
	iters := h.MaxIter
	if iters <= 0 {
		iters = 64
	}
	for it := 0; it < iters && hi-lo > 1; it++ {
		mid := lo + (hi-lo)/2
		if capacity(mid) >= n {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Allocate chunk sizes at the equalising completion time hi.
	sizes := make([]int, len(rails))
	total := 0
	for i := range rails {
		sizes[i] = h.railCap(&rails[i], now, hi, n)
		total += sizes[i]
	}
	// Trim the surplus introduced by discretisation, preferring to shrink
	// the slowest rails (largest completion reduction per byte removed).
	surplus := total - n
	for i := len(rails) - 1; i >= 0 && surplus > 0; i-- {
		cut := surplus
		if cut > sizes[i] {
			cut = sizes[i]
		}
		sizes[i] -= cut
		surplus -= cut
	}
	// Suppress slivers below MinChunk, folding them into the largest
	// chunk.
	largest := 0
	for i := range sizes {
		if sizes[i] > sizes[largest] {
			largest = i
		}
	}
	for i := range sizes {
		if i != largest && sizes[i] > 0 && sizes[i] < minChunk {
			sizes[largest] += sizes[i]
			sizes[i] = 0
		}
	}
	// Emit chunks in rail order for deterministic offsets.
	chunks := make([]Chunk, 0, len(rails))
	off := 0
	for i := range rails {
		if sizes[i] == 0 {
			continue
		}
		chunks = append(chunks, Chunk{Rail: rails[i].Index, Offset: off, Size: sizes[i]})
		off += sizes[i]
	}
	if len(chunks) == 0 {
		return SingleRail{}.Split(n, now, rails)
	}
	return chunks
}

// railCap returns how many bytes rail r can finish within T of now,
// capped at n.
func (h HeteroSplit) railCap(r *RailView, now, T time.Duration, n int) int {
	budget := T - r.wait(now)
	if budget <= 0 {
		return 0
	}
	c := r.Est.SizeFor(budget, n)
	if c > n {
		c = n
	}
	return c
}

// SplitRatioDichotomy is the paper's literal two-rail procedure: "The
// algorithm begins by splitting the packets in two chunks of equal size.
// It then compares the predicted transfer time required by each network.
// For each interface, the time remaining before it becomes idle is added
// to its predicted transfer time. This dichotomy process is repeated
// until a split ratio where both transfer durations are equivalent is
// found." It returns the ratio of the message assigned to rail a.
func SplitRatioDichotomy(n int, now time.Duration, a, b RailView, iters int) float64 {
	if iters <= 0 {
		iters = 40
	}
	lo, hi := 0.0, 1.0
	ratio := 0.5
	for it := 0; it < iters; it++ {
		ratio = (lo + hi) / 2
		na := int(math.Round(ratio * float64(n)))
		ta := a.Completion(now, na)
		tb := b.Completion(now, n-na)
		if ta == tb {
			break
		}
		if ta > tb {
			hi = ratio // rail a is the bottleneck: shrink its share
		} else {
			lo = ratio
		}
	}
	return ratio
}

// RatioSplit is the OpenMPI-style baseline of §II-A: fixed per-rail
// weights computed once (from each rail's throughput at a reference
// size), applied to every message and blind to NIC state. The paper's
// criticism — "a split ratio for a 8 MB message may not fit a 256 KB
// message" — is demonstrated by the ablation bench.
type RatioSplit struct {
	// RefSize is the size at which the weights were computed.
	RefSize int
	// Weights maps rail index to its share. Build with NewRatioSplit.
	Weights map[int]float64
}

// NewRatioSplit computes the fixed weights from the rails' estimated
// throughput at refSize (typically the largest benchmarked message). A
// Down rail contributes no weight: ratios computed over a dead rail
// would permanently route a share of every message to it.
func NewRatioSplit(refSize int, rails []RailView) *RatioSplit {
	rails = Usable(rails)
	w := make(map[int]float64, len(rails))
	var sum float64
	for _, r := range rails {
		d := r.Est.Estimate(refSize)
		if d <= 0 {
			continue
		}
		bw := float64(refSize) / d.Seconds()
		w[r.Index] = bw
		sum += bw
	}
	for i := range w {
		w[i] /= sum
	}
	return &RatioSplit{RefSize: refSize, Weights: w}
}

// Name implements Splitter.
func (r *RatioSplit) Name() string { return "fixed-ratio" }

// Split implements Splitter.
func (r *RatioSplit) Split(n int, now time.Duration, rails []RailView) []Chunk {
	if n == 0 {
		return nil
	}
	rails = Usable(rails)
	// Deterministic order: rails as given.
	chunks := make([]Chunk, 0, len(rails))
	off := 0
	for i, rv := range rails {
		var size int
		if i == len(rails)-1 {
			size = n - off
		} else {
			size = int(math.Round(r.Weights[rv.Index] * float64(n)))
			if size > n-off {
				size = n - off
			}
		}
		if size <= 0 {
			continue
		}
		chunks = append(chunks, Chunk{Rail: rv.Index, Offset: off, Size: size})
		off += size
	}
	if off != n && len(chunks) > 0 {
		chunks[len(chunks)-1].Size += n - off
	}
	return chunks
}

// AssignGreedy reproduces the basic balancing of §II-A and Fig 3: each
// packet goes, whole, to the rail predicted to be idle first; the rail's
// horizon is then advanced by that packet's transfer time. It returns the
// chosen rail index for each packet.
func AssignGreedy(sizes []int, now time.Duration, rails []RailView) []int {
	rails = Usable(rails)
	horizon := make(map[int]time.Duration, len(rails))
	order := make([]int, len(rails))
	for i, r := range rails {
		horizon[r.Index] = r.IdleAt
		order[i] = r.Index
	}
	sort.Ints(order)
	byIndex := make(map[int]*RailView, len(rails))
	for i := range rails {
		byIndex[rails[i].Index] = &rails[i]
	}
	out := make([]int, len(sizes))
	for j, sz := range sizes {
		best := order[0]
		for _, idx := range order[1:] {
			if horizon[idx] < horizon[best] {
				best = idx
			}
		}
		out[j] = best
		start := horizon[best]
		if start < now {
			start = now
		}
		horizon[best] = start + byIndex[best].Est.Estimate(sz)
	}
	return out
}
