package strategy

import (
	"testing"
	"time"
)

// adaptiveRails builds two equal rails backed by a linear estimator.
func adaptiveRails(beta float64) []RailView {
	est := fixedEst{alpha: 10 * time.Microsecond, beta: beta}
	return []RailView{
		{Index: 0, Est: est},
		{Index: 1, Est: est},
	}
}

// fixedEst is a linear alpha+beta*n estimator for tests.
type fixedEst struct {
	alpha time.Duration
	beta  float64 // ns per byte
}

func (f fixedEst) Estimate(n int) time.Duration {
	return f.alpha + time.Duration(f.beta*float64(n))
}

func (f fixedEst) SizeFor(d time.Duration, max int) int {
	if max <= 0 {
		max = 64 << 20
	}
	if d <= f.alpha {
		return 0
	}
	n := int(float64(d-f.alpha) / f.beta)
	if n > max {
		return max
	}
	return n
}

func TestAdaptiveFallsBackToPrediction(t *testing.T) {
	a := &Adaptive{ProbeEvery: 1 << 30}
	rails := adaptiveRails(1)
	// With two equal rails and a large message, splitting halves the
	// predicted time: the cold chooser must pick the split.
	chunks := a.Split(1<<20, 0, rails)
	if len(chunks) < 2 {
		t.Fatalf("cold adaptive chose %d chunks, want a split", len(chunks))
	}
	if err := Validate(1<<20, chunks); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveLearnsFromOutcomes(t *testing.T) {
	a := &Adaptive{ProbeEvery: 1 << 30}
	rails := adaptiveRails(1)
	n := 1 << 20
	// Feed outcomes that contradict the prediction: splits measured 4x
	// worse than single-rail (e.g. chunk overhead the model misses).
	for i := 0; i < 5; i++ {
		a.ObserveOutcome(n, ModeSplit, 8*time.Millisecond)
		a.ObserveOutcome(n, ModeSingle, 2*time.Millisecond)
	}
	chunks := a.Split(n, 0, rails)
	if len(chunks) != 1 {
		t.Fatalf("adaptive ignored observed outcomes: %d chunks, want 1", len(chunks))
	}
	// Reversed evidence flips the choice back.
	for i := 0; i < 40; i++ {
		a.ObserveOutcome(n, ModeSplit, 500*time.Microsecond)
	}
	chunks = a.Split(n, 0, rails)
	if len(chunks) < 2 {
		t.Fatalf("adaptive did not recover the split after new evidence")
	}
}

func TestAdaptiveSplitIsStableAndLoserSplitInverts(t *testing.T) {
	a := &Adaptive{}
	rails := adaptiveRails(1)
	n := 1 << 20
	for i := 0; i < 5; i++ {
		a.ObserveOutcome(n, ModeSplit, 8*time.Millisecond)
		a.ObserveOutcome(n, ModeSingle, 2*time.Millisecond)
	}
	// Split never probes: repeated calls (diagnostics, cache refills)
	// always return the winner.
	for i := 0; i < 16; i++ {
		if len(a.Split(n, 0, rails)) != 1 {
			t.Fatalf("Split returned the losing mode on call %d", i)
		}
	}
	// LoserSplit is the engine's probe: the rejected mode's chunks.
	chunks, mode := a.LoserSplit(n, 0, rails)
	if mode != ModeSplit || len(chunks) < 2 {
		t.Fatalf("LoserSplit = %d chunks as %v, want a striped ModeSplit plan", len(chunks), mode)
	}
	if err := Validate(n, chunks); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptivePreferParallel(t *testing.T) {
	a := &Adaptive{ProbeEvery: 1 << 30}
	n := 16 << 10
	// Cold: the predictions decide.
	if !a.PreferParallel(n, time.Millisecond, 2*time.Millisecond) {
		t.Fatal("cold PreferParallel ignored better prediction")
	}
	if a.PreferParallel(n, 2*time.Millisecond, time.Millisecond) {
		t.Fatal("cold PreferParallel ignored worse prediction")
	}
	// Warm observed outcomes override predictions. Eager-path outcomes
	// live in their own namespace (PreferParallel is an eager decision);
	// rendezvous outcomes of the same size class must not leak into it.
	for i := 0; i < 5; i++ {
		a.ObserveEagerOutcome(n, ModeParallel, 4*time.Millisecond)
		a.ObserveEagerOutcome(n, ModeSingle, time.Millisecond)
		a.ObserveOutcome(n, ModeSingle, time.Nanosecond) // rendezvous: different namespace
	}
	if a.PreferParallel(n, time.Microsecond, time.Hour) {
		t.Fatal("observed outcomes did not override predictions")
	}
}

func TestAdaptiveVerdictFlipFiresCallback(t *testing.T) {
	flips := 0
	a := &Adaptive{OnVerdictChange: func() { flips++ }}
	n := 1 << 20
	// Warm both modes with split winning: establishes the verdict (no
	// flip — there was no previous warm verdict).
	for i := 0; i < 4; i++ {
		a.ObserveOutcome(n, ModeSplit, time.Millisecond)
		a.ObserveOutcome(n, ModeSingle, 4*time.Millisecond)
	}
	if flips != 0 {
		t.Fatalf("callback fired %d times before any verdict change", flips)
	}
	// New evidence reverses the ranking: exactly one flip must fire so
	// the engine can invalidate plans cached under the old verdict.
	for i := 0; i < 10; i++ {
		a.ObserveOutcome(n, ModeSplit, 8*time.Millisecond)
	}
	if flips != 1 {
		t.Fatalf("verdict flip fired callback %d times, want 1", flips)
	}
}

func TestAdaptiveZeroLength(t *testing.T) {
	a := &Adaptive{}
	if chunks := a.Split(0, 0, adaptiveRails(1)); chunks != nil {
		t.Fatalf("Split(0) = %v, want nil", chunks)
	}
}
