package strategy

import (
	"time"

	"repro/internal/model"
)

// EagerPlan is the decision for an eager emission (§II-C, Fig 7): either
// aggregate everything on one rail, or split across several rails with
// each chunk submitted from a different core, paying the offload
// synchronisation cost.
type EagerPlan struct {
	// Parallel reports whether the chunks are submitted on distinct
	// cores.
	Parallel bool
	// Chunks is the distribution (a single chunk when !Parallel).
	Chunks []Chunk
	// OffloadCost is the T_O charged when Parallel (0 otherwise).
	OffloadCost time.Duration
	// Predicted is the plan's predicted completion relative to now —
	// equation (1) of the paper for parallel plans.
	Predicted time.Duration
}

// PlanEager chooses between aggregation on the fastest rail and the
// multicore parallel send. idleCores is the number of cores available for
// offloaded submission (including none); offloadCost is the core-to-core
// synchronisation cost (the paper's 3 µs, or 6 µs under preemption).
//
// The chunk count is bounded by min{idle NICs, idle cores} as §III-B
// prescribes. Parallel submission is chosen only when its predicted
// completion — T_O + max over rails of the chunk transfer time, equation
// (1) — beats the best single-rail aggregation, which makes tiny
// messages stay on one rail (Fig 9's < 4 KB regime).
func PlanEager(n int, now time.Duration, rails []RailView, idleCores int, offloadCost time.Duration) EagerPlan {
	single, parallel := EagerCandidates(n, now, rails, idleCores, offloadCost)
	if parallel != nil && parallel.Predicted < single.Predicted {
		return *parallel
	}
	return single
}

// EagerCandidates returns both eager schedules for an n-byte message:
// the single-rail aggregation plan, and — when parallel multicore
// submission is structurally possible (enough idle NICs and cores,
// every chunk within its rail's eager limit) — the parallel candidate
// with its equation-(1) predicted completion, regardless of which plan
// the model prefers. The adaptive chooser needs both candidates so
// observed outcomes can overrule (and probe against) the prediction in
// either direction; PlanEager applies the model's preference.
func EagerCandidates(n int, now time.Duration, rails []RailView, idleCores int, offloadCost time.Duration) (EagerPlan, *EagerPlan) {
	rails = Usable(rails)
	single := SingleRail{}.Split(n, now, rails)
	plan := EagerPlan{
		Parallel:  false,
		Chunks:    single,
		Predicted: PredictedCompletion(now, rails, single),
	}
	if n == 0 || len(rails) < 2 || idleCores < 2 {
		return plan, nil
	}
	idleNICs := 0
	for i := range rails {
		if rails[i].IdleAt <= now {
			idleNICs++
		}
	}
	k := idleNICs
	if idleCores < k {
		k = idleCores
	}
	if k < 2 {
		return plan, nil
	}
	// Consider the k rails with the best single-rail completions.
	cand := bestRails(n, now, rails, k)
	chunks := HeteroSplit{}.Split(n, now, cand)
	if len(chunks) < 2 {
		return plan, nil
	}
	// Respect each rail's eager limit: a chunk that would overflow it
	// disqualifies the parallel plan (the engine would have to switch
	// protocol mid-message).
	byIndex := make(map[int]*RailView, len(cand))
	for i := range cand {
		byIndex[cand[i].Index] = &cand[i]
	}
	for _, c := range chunks {
		if r := byIndex[c.Rail]; r.EagerMax > 0 && c.Size > r.EagerMax {
			return plan, nil
		}
	}
	par := offloadCost + PredictedCompletion(now, cand, chunks)
	return plan, &EagerPlan{Parallel: true, Chunks: chunks, OffloadCost: offloadCost, Predicted: par}
}

// bestRails returns the k rails with the earliest single-message
// completion, preserving the original order among the selected. It
// never adds rails, so an Up-filtered input stays Up-filtered.
//
//railvet:upfilter
func bestRails(n int, now time.Duration, rails []RailView, k int) []RailView {
	if k >= len(rails) {
		return rails
	}
	type scored struct {
		pos int
		t   time.Duration
	}
	s := make([]scored, len(rails))
	for i := range rails {
		s[i] = scored{i, rails[i].Completion(now, n)}
	}
	// Selection by repeated minimum keeps this dependency-free and
	// deterministic (k is tiny: the number of rails).
	picked := make([]bool, len(rails))
	for c := 0; c < k; c++ {
		best := -1
		for i := range s {
			if picked[i] {
				continue
			}
			if best == -1 || s[i].t < s[best].t {
				best = i
			}
		}
		picked[best] = true
	}
	out := make([]RailView, 0, k)
	for i := range rails {
		if picked[i] {
			out = append(out, rails[i])
		}
	}
	return out
}

// ModelEstimator adapts an analytic NIC profile to the Estimator
// interface. It backs the equation-(1) estimation harness (Fig 9) and
// tests that need exact model arithmetic instead of sampled curves.
type ModelEstimator struct {
	P *model.Profile
}

// Estimate implements Estimator with the model's protocol-selected
// one-way time.
func (m ModelEstimator) Estimate(n int) time.Duration { return m.P.OneWay(n) }

// SizeFor implements Estimator by binary search (OneWay is monotone).
func (m ModelEstimator) SizeFor(d time.Duration, max int) int {
	if max <= 0 {
		max = 64 << 20
	}
	if m.P.OneWay(max) <= d {
		return max
	}
	if m.P.OneWay(0) > d {
		return 0
	}
	lo, hi := 0, max
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if m.P.OneWay(mid) <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
