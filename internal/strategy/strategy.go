// Package strategy implements the optimization strategies of the paper's
// NewMadeleine engine as pure decision procedures: given a message, the
// per-rail sampled estimators and each NIC's predicted idle time, decide
// how to split and where to send.
//
// Strategies (paper section in parentheses):
//
//   - SingleRail: whole message on the rail with the earliest predicted
//     completion, accounting for busy NICs (Fig 2).
//   - IsoSplit: equal chunks on every rail (Fig 1b) — the baseline that
//     Fig 8 shows saturating at twice the slower rail.
//   - HeteroSplit: chunks sized so every rail finishes at the same
//     predicted instant, found by bisection as §II-B describes (Fig 1c),
//     including the time remaining before busy NICs become idle (Fig 2).
//     Rails that cannot contribute by the common completion time are
//     discarded automatically.
//   - RatioSplit: the OpenMPI-style baseline criticised in §II-A — a
//     fixed ratio computed from the rails' throughput at one reference
//     size, applied at every size, ignoring NIC state.
//   - AssignGreedy: the "when a NIC becomes idle, it looks after the next
//     communication" packet balancer whose poor eager behaviour motivates
//     aggregation (Fig 3).
//   - PlanEager: the multicore eager plan (§II-C/III-D): aggregate on the
//     fastest rail when only one core is usable; split across
//     min{idle NICs, idle cores} rails, charging the 3 µs offload cost,
//     when parallel PIO submission is predicted to win.
package strategy

import (
	"fmt"
	"time"
)

// Estimator predicts one-way transfer durations on one rail. Both
// sampling.RailProfile (measured) and ModelEstimator (analytic) satisfy
// it.
type Estimator interface {
	// Estimate returns the predicted one-way transfer duration of an
	// n-byte message.
	Estimate(n int) time.Duration
	// SizeFor returns the largest size whose predicted duration does not
	// exceed d, capped at max (0 = implementation default).
	SizeFor(d time.Duration, max int) int
}

// RailView is a strategy's view of one rail at decision time.
type RailView struct {
	// Index identifies the rail in the cluster.
	Index int
	// Est is the rail's sampled estimator.
	Est Estimator
	// IdleAt is the absolute time the NIC is predicted to become idle
	// (now or earlier if it is idle).
	IdleAt time.Duration
	// EagerMax is the rail's eager payload limit (0 = none).
	EagerMax int
	// Down marks a rail that is not schedulable (Suspect or Down in the
	// fabric's health tracker). Every splitter excludes such rails; the
	// zero value keeps a bare RailView usable.
	Down bool
}

// Usable returns the rails a strategy may place work on: those not
// marked Down. When every rail is Down it returns rails unchanged — the
// engine decides separately whether to send at all, and a last-resort
// decision over dead rails is still a valid (droppable) decision.
//
//railvet:upfilter
func Usable(rails []RailView) []RailView {
	up := 0
	for i := range rails {
		if !rails[i].Down {
			up++
		}
	}
	if up == len(rails) || up == 0 {
		return rails
	}
	out := make([]RailView, 0, up)
	for i := range rails {
		if !rails[i].Down {
			out = append(out, rails[i])
		}
	}
	return out
}

// wait returns how long the rail keeps us waiting beyond now.
func (r *RailView) wait(now time.Duration) time.Duration {
	if r.IdleAt <= now {
		return 0
	}
	return r.IdleAt - now
}

// Completion returns the predicted completion time (relative to now) of
// an n-byte transfer on this rail, including the wait for the NIC to
// become idle — the quantity compared in Fig 2.
func (r *RailView) Completion(now time.Duration, n int) time.Duration {
	return r.wait(now) + r.Est.Estimate(n)
}

// Chunk is one piece of a split decision.
type Chunk struct {
	// Rail is the rail the chunk goes on.
	Rail int
	// Offset and Size locate the chunk in the message.
	Offset int
	Size   int
}

// Splitter decides how an n-byte message is distributed over rails.
type Splitter interface {
	// Name identifies the strategy in reports.
	Name() string
	// Split returns contiguous, non-overlapping chunks covering [0, n).
	// rails is never empty.
	Split(n int, now time.Duration, rails []RailView) []Chunk
}

// Validate checks that chunks exactly cover [0, n) in order. It is used
// by tests and by the engine in debug builds.
func Validate(n int, chunks []Chunk) error {
	if n == 0 {
		if len(chunks) != 0 {
			return fmt.Errorf("strategy: %d chunks for empty message", len(chunks))
		}
		return nil
	}
	if len(chunks) == 0 {
		return fmt.Errorf("strategy: no chunks for %d bytes", n)
	}
	off := 0
	for i, c := range chunks {
		if c.Size <= 0 {
			return fmt.Errorf("strategy: chunk %d has size %d", i, c.Size)
		}
		if c.Offset != off {
			return fmt.Errorf("strategy: chunk %d at offset %d, want %d", i, c.Offset, off)
		}
		off += c.Size
	}
	if off != n {
		return fmt.Errorf("strategy: chunks cover %d bytes, want %d", off, n)
	}
	return nil
}

// PredictedCompletion returns the maximum predicted completion (relative
// to now) over the chunks of a split.
//
//railvet:ignore railup arithmetic over an already-decided split: the loops build a lookup index and score chunks, they never choose rails
func PredictedCompletion(now time.Duration, rails []RailView, chunks []Chunk) time.Duration {
	byIndex := make(map[int]*RailView, len(rails))
	for i := range rails {
		byIndex[rails[i].Index] = &rails[i]
	}
	var worst time.Duration
	for _, c := range chunks {
		r := byIndex[c.Rail]
		if r == nil {
			continue
		}
		if t := r.Completion(now, c.Size); t > worst {
			worst = t
		}
	}
	return worst
}
