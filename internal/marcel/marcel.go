// Package marcel reproduces the role the Marcel two-level thread
// scheduler plays in the paper: it owns the node's cores, runs tasklets —
// high-priority deferred work items — on chosen cores, knows which cores
// are idle, and accounts for the cost of waking a remote core.
//
// The paper measures that signalling a request to an idle remote core
// costs 3 µs, and 6 µs when a computing thread must be preempted by a
// signal (§III-D). Those costs are charged by the worker before it runs
// each tasklet, so an offloaded eager submission starts
// OffloadSyncCost/OffloadPreemptCost after the strategy registered it —
// exactly the T_O term of the paper's equation (1).
package marcel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/rt"
)

// Tasklet is a deferred work item. Run receives the worker's Ctx and may
// block (it executes on a core actor).
type Tasklet struct {
	Name string
	Run  func(ctx rt.Ctx)
}

// submission pairs a tasklet with the synchronisation delay charged
// before it runs.
type submission struct {
	t     Tasklet
	delay time.Duration
}

// shutdown is the sentinel that stops a worker.
type shutdown struct{}

// CoreStats counts per-core activity.
type CoreStats struct {
	Tasklets uint64
	BusyTime time.Duration
}

// Scheduler manages one node's cores.
type Scheduler struct {
	env     rt.Env
	workers []*worker
}

type worker struct {
	id  int
	q   rt.Queue
	env rt.Env

	mu        sync.Mutex
	running   bool
	computing bool
	queued    int
	stats     CoreStats
}

// New starts a scheduler with n core workers (n >= 1).
func New(env rt.Env, n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{env: env}
	for i := 0; i < n; i++ {
		w := &worker{id: i, q: env.NewQueue(), env: env}
		s.workers = append(s.workers, w)
		env.Go(fmt.Sprintf("core-%d", i), w.loop)
	}
	return s
}

func (w *worker) loop(ctx rt.Ctx) {
	for {
		item := w.q.Pop(ctx)
		if _, stop := item.(shutdown); stop {
			return
		}
		sub := item.(submission)
		w.mu.Lock()
		w.queued--
		w.running = true
		w.mu.Unlock()
		if sub.delay > 0 {
			ctx.Sleep(sub.delay)
		}
		start := ctx.Now()
		sub.t.Run(ctx)
		w.mu.Lock()
		w.running = false
		w.stats.Tasklets++
		w.stats.BusyTime += ctx.Now() - start + sub.delay
		w.mu.Unlock()
	}
}

// NCores returns the number of core workers.
func (s *Scheduler) NCores() int { return len(s.workers) }

// coreIdle reports whether core i is idle: no tasklet running or queued
// and no computing thread.
func (s *Scheduler) coreIdle(i int) bool {
	w := s.workers[i]
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.running && !w.computing && w.queued == 0
}

// IdleCores returns the indices of currently idle cores.
func (s *Scheduler) IdleCores() []int {
	var idle []int
	for i := range s.workers {
		if s.coreIdle(i) {
			idle = append(idle, i)
		}
	}
	return idle
}

// NumIdle returns the number of idle cores (min{idle NICs, idle cores}
// is the paper's chunk-count bound).
func (s *Scheduler) NumIdle() int { return len(s.IdleCores()) }

// SetComputing marks core i as occupied by an application compute thread.
// Submitting to a computing core pays the preemption-signal cost.
func (s *Scheduler) SetComputing(i int, v bool) {
	w := s.workers[i]
	w.mu.Lock()
	w.computing = v
	w.mu.Unlock()
}

// Computing reports whether core i runs an application thread.
func (s *Scheduler) Computing(i int) bool {
	w := s.workers[i]
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.computing
}

// Stats returns a snapshot of core i's counters.
func (s *Scheduler) Stats(i int) CoreStats {
	w := s.workers[i]
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// syncCost returns the core-to-core signalling cost for core i: the
// paper's 3 µs, or 6 µs when a computing thread must be preempted.
func (s *Scheduler) syncCost(i int) time.Duration {
	if s.Computing(i) {
		return model.OffloadPreemptCost
	}
	return model.OffloadSyncCost
}

// Submit queues t on core i, charging the remote-core synchronisation
// cost before it runs. It returns the charged cost.
func (s *Scheduler) Submit(i int, t Tasklet) time.Duration {
	d := s.syncCost(i)
	s.push(i, t, d)
	return d
}

// SubmitLocal queues t on core i with no synchronisation cost — used when
// the submitting context already runs on that core (e.g. the progression
// loop handing work to itself).
func (s *Scheduler) SubmitLocal(i int, t Tasklet) {
	s.push(i, t, 0)
}

// SubmitIdle queues t on an idle core if one exists, otherwise on the
// least-loaded core. It returns the chosen core and the charged cost.
func (s *Scheduler) SubmitIdle(t Tasklet) (int, time.Duration) {
	best := 0
	bestLoad := int(^uint(0) >> 1)
	for i, w := range s.workers {
		if s.coreIdle(i) {
			return i, s.Submit(i, t)
		}
		w.mu.Lock()
		load := w.queued
		if w.running {
			load++
		}
		w.mu.Unlock()
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best, s.Submit(best, t)
}

func (s *Scheduler) push(i int, t Tasklet, d time.Duration) {
	w := s.workers[i]
	w.mu.Lock()
	w.queued++
	w.mu.Unlock()
	w.q.Push(submission{t: t, delay: d})
}

// Shutdown stops all workers after their queued tasklets drain.
func (s *Scheduler) Shutdown() {
	for _, w := range s.workers {
		w.q.Push(shutdown{})
	}
}
