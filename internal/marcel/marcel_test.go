package marcel

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/rt"
)

func TestTaskletRunsAfterSyncCost(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 2)
	var ranAt time.Duration
	env.Go("driver", func(ctx rt.Ctx) {
		ctx.Sleep(time.Microsecond)
		cost := s.Submit(1, Tasklet{Name: "send", Run: func(c rt.Ctx) { ranAt = c.Now() }})
		if cost != model.OffloadSyncCost {
			t.Errorf("sync cost %v, want %v", cost, model.OffloadSyncCost)
		}
		ctx.Sleep(100 * time.Microsecond)
		s.Shutdown()
	})
	env.Run()
	if want := time.Microsecond + model.OffloadSyncCost; ranAt != want {
		t.Fatalf("tasklet ran at %v, want %v (paper's 3µs offload cost)", ranAt, want)
	}
}

func TestPreemptCostOnComputingCore(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 2)
	var ranAt time.Duration
	env.Go("driver", func(ctx rt.Ctx) {
		s.SetComputing(0, true)
		if cost := s.Submit(0, Tasklet{Run: func(c rt.Ctx) { ranAt = c.Now() }}); cost != model.OffloadPreemptCost {
			t.Errorf("preempt cost %v, want %v", cost, model.OffloadPreemptCost)
		}
		ctx.Sleep(100 * time.Microsecond)
		s.Shutdown()
	})
	env.Run()
	if ranAt != model.OffloadPreemptCost {
		t.Fatalf("tasklet ran at %v, want %v (paper's 6µs preemption)", ranAt, model.OffloadPreemptCost)
	}
}

func TestSubmitLocalHasNoCost(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 1)
	var ranAt time.Duration = -1
	env.Go("driver", func(ctx rt.Ctx) {
		s.SubmitLocal(0, Tasklet{Run: func(c rt.Ctx) { ranAt = c.Now() }})
		ctx.Sleep(time.Millisecond)
		s.Shutdown()
	})
	env.Run()
	if ranAt != 0 {
		t.Fatalf("local tasklet ran at %v, want 0", ranAt)
	}
}

func TestIdleCoresTracking(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 4)
	env.Go("driver", func(ctx rt.Ctx) {
		ctx.Sleep(time.Microsecond) // let workers park on their queues
		if n := s.NumIdle(); n != 4 {
			t.Errorf("fresh scheduler: %d idle cores, want 4", n)
		}
		s.SetComputing(3, true)
		if n := s.NumIdle(); n != 3 {
			t.Errorf("with one computing core: %d idle, want 3", n)
		}
		block := env.NewEvent()
		s.Submit(0, Tasklet{Run: func(c rt.Ctx) { block.Wait(c) }})
		ctx.Sleep(10 * time.Microsecond) // past the sync cost; tasklet running
		if n := s.NumIdle(); n != 2 {
			t.Errorf("with one running tasklet: %d idle, want 2", n)
		}
		idle := s.IdleCores()
		if len(idle) != 2 || idle[0] != 1 || idle[1] != 2 {
			t.Errorf("idle set = %v, want [1 2]", idle)
		}
		block.Fire()
		ctx.Sleep(time.Microsecond)
		s.SetComputing(3, false)
		if n := s.NumIdle(); n != 4 {
			t.Errorf("after drain: %d idle, want 4", n)
		}
		s.Shutdown()
	})
	env.Run()
}

func TestSubmitIdlePrefersIdleCore(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 3)
	env.Go("driver", func(ctx rt.Ctx) {
		ctx.Sleep(time.Microsecond)
		block := env.NewEvent()
		s.Submit(0, Tasklet{Run: func(c rt.Ctx) { block.Wait(c) }})
		ctx.Sleep(10 * time.Microsecond)
		core, _ := s.SubmitIdle(Tasklet{Run: func(rt.Ctx) {}})
		if core == 0 {
			t.Errorf("SubmitIdle picked the busy core 0")
		}
		block.Fire()
		ctx.Sleep(10 * time.Microsecond)
		s.Shutdown()
	})
	env.Run()
}

func TestSubmitIdleFallsBackToLeastLoaded(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 2)
	env.Go("driver", func(ctx rt.Ctx) {
		ctx.Sleep(time.Microsecond)
		block := env.NewEvent()
		// Occupy both cores, then pile two more tasklets on core 0.
		s.Submit(0, Tasklet{Run: func(c rt.Ctx) { block.Wait(c) }})
		s.Submit(1, Tasklet{Run: func(c rt.Ctx) { block.Wait(c) }})
		ctx.Sleep(10 * time.Microsecond)
		s.Submit(0, Tasklet{Run: func(rt.Ctx) {}})
		s.Submit(0, Tasklet{Run: func(rt.Ctx) {}})
		core, _ := s.SubmitIdle(Tasklet{Run: func(rt.Ctx) {}})
		if core != 1 {
			t.Errorf("SubmitIdle picked core %d, want least-loaded 1", core)
		}
		block.Fire()
		ctx.Sleep(10 * time.Microsecond)
		s.Shutdown()
	})
	env.Run()
}

func TestFIFOPerCore(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 1)
	var order []int
	env.Go("driver", func(ctx rt.Ctx) {
		for i := 0; i < 5; i++ {
			i := i
			s.Submit(0, Tasklet{Run: func(rt.Ctx) { order = append(order, i) }})
		}
		ctx.Sleep(time.Millisecond)
		s.Shutdown()
	})
	env.Run()
	if len(order) != 5 {
		t.Fatalf("ran %d tasklets", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 1)
	work := 10 * time.Microsecond
	env.Go("driver", func(ctx rt.Ctx) {
		s.Submit(0, Tasklet{Run: func(c rt.Ctx) { c.Sleep(work) }})
		ctx.Sleep(time.Millisecond)
		s.Shutdown()
	})
	env.Run()
	st := s.Stats(0)
	if st.Tasklets != 1 {
		t.Fatalf("tasklets = %d", st.Tasklets)
	}
	if want := work + model.OffloadSyncCost; st.BusyTime != want {
		t.Fatalf("busy time %v, want %v", st.BusyTime, want)
	}
}

func TestWorksOnLiveEnv(t *testing.T) {
	env := rt.NewLive()
	s := New(env, 2)
	var n atomic.Int32
	done := env.NewEvent()
	for i := 0; i < 8; i++ {
		s.SubmitIdle(Tasklet{Run: func(rt.Ctx) {
			if n.Add(1) == 8 {
				done.Fire()
			}
		}})
	}
	env.Go("waiter", func(ctx rt.Ctx) {
		if !done.WaitTimeout(ctx, 5*time.Second) {
			t.Error("tasklets did not complete")
		}
		s.Shutdown()
	})
	env.WaitIdle()
	if n.Load() != 8 {
		t.Fatalf("ran %d tasklets, want 8", n.Load())
	}
}

func TestNewClampsCores(t *testing.T) {
	env := rt.NewSim()
	s := New(env, 0)
	if s.NCores() != 1 {
		t.Fatalf("NCores = %d, want 1", s.NCores())
	}
	s.Shutdown()
	env.Run()
}
