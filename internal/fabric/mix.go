package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// Mix joins several fabrics into one heterogeneous rail set: the rails
// of sub-fabric k appear after all rails of sub-fabrics 0..k-1, so a
// cluster can run, say, one shared-memory rail and two TCP rails as a
// single three-rail fabric. The engine and strategies see one node with
// one rail index space; deliveries, health events, telemetry and chaos
// hooks are remapped between the combined and per-sub index spaces.
//
// Sub-fabrics must share one execution environment, agree on the node
// count, and their hosted nodes must implement DirectNode — Mix installs
// a permanent remapping sink on every hosted sub-node, so every delivery
// flows through the mixed node's queue (or its direct sink).
type Mix struct {
	env     rt.Env
	subs    []Fabric
	offsets []int // rail index offset of each sub-fabric
	total   int
	nodes   []*mixNode

	closed  atomic.Bool
	stopQs  []rt.Queue // health forwarder stop nudges
	stopsMu sync.Mutex
}

// NewMix combines the sub-fabrics. local is the node id hosted by this
// process, or -1 when every node is hosted; it must match how the subs
// were built.
func NewMix(local int, subs ...Fabric) (*Mix, error) {
	if len(subs) < 2 {
		return nil, fmt.Errorf("fabric: mix needs at least 2 sub-fabrics, got %d", len(subs))
	}
	m := &Mix{env: subs[0].Env(), subs: subs}
	nodes := subs[0].NumNodes()
	for k, s := range subs {
		if s.NumNodes() != nodes {
			return nil, fmt.Errorf("fabric: mix sub %d has %d nodes, sub 0 has %d", k, s.NumNodes(), nodes)
		}
		if s.Env() != m.env {
			return nil, fmt.Errorf("fabric: mix sub %d runs on a different environment", k)
		}
		m.offsets = append(m.offsets, m.total)
		m.total += s.NumRails()
	}
	for i := 0; i < nodes; i++ {
		hosted := local < 0 || i == local
		mn := &mixNode{m: m, id: i, hosted: hosted}
		if hosted {
			mn.recvq = m.env.NewQueue()
			for k, s := range subs {
				dn, ok := s.Node(i).(DirectNode)
				if !ok {
					return nil, fmt.Errorf("fabric: mix sub %d node %d does not implement DirectNode", k, i)
				}
				off := m.offsets[k]
				dn.SetSink(func(d *Delivery) {
					d.Rail += off
					mn.deliver(d)
				})
			}
			mn.health = m.newMixHealth(i)
		}
		m.nodes = append(m.nodes, mn)
	}
	return m, nil
}

// Env returns the shared execution environment.
func (m *Mix) Env() rt.Env { return m.env }

// NumNodes returns the node count.
func (m *Mix) NumNodes() int { return m.subs[0].NumNodes() }

// NumRails returns the combined rail count.
func (m *Mix) NumRails() int { return m.total }

// Node returns node i.
func (m *Mix) Node(i int) Node { return m.nodes[i] }

// NumSubs returns the number of sub-fabrics.
func (m *Mix) NumSubs() int { return len(m.subs) }

// Sub returns sub-fabric k (chaos hooks and transport diagnostics of
// one kind live on the concrete fabric).
func (m *Mix) Sub(k int) Fabric { return m.subs[k] }

// SubFor resolves a combined rail index to its sub-fabric and the rail
// index within it.
func (m *Mix) SubFor(rail int) (Fabric, int) {
	k := m.subIndex(rail)
	return m.subs[k], rail - m.offsets[k]
}

func (m *Mix) subIndex(rail int) int {
	for k := len(m.offsets) - 1; k > 0; k-- {
		if rail >= m.offsets[k] {
			return k
		}
	}
	return 0
}

// ThrottleRail implements Throttler by dispatching to the owning
// sub-fabric, if it supports throttling.
func (m *Mix) ThrottleRail(rail int, factor float64) {
	if rail < 0 || rail >= m.total {
		return
	}
	sub, r := m.SubFor(rail)
	if t, ok := sub.(Throttler); ok {
		t.ThrottleRail(r, factor)
	}
}

// Close tears every sub-fabric down and stops the health forwarders.
func (m *Mix) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, s := range m.subs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.stopsMu.Lock()
	qs := m.stopQs
	m.stopQs = nil
	m.stopsMu.Unlock()
	for _, q := range qs {
		q.Push(nil)
	}
	return first
}

// mixNode is one combined endpoint.
type mixNode struct {
	m      *Mix
	id     int
	hosted bool
	recvq  rt.Queue
	health *mixHealth

	sinkMu sync.RWMutex
	sink   func(*Delivery)
}

// deliver routes a (already remapped) delivery to the direct sink, or to
// the mixed receive queue. The push happens under the sink read lock so
// it cannot race SetSink's drain and strand a frame.
func (n *mixNode) deliver(d *Delivery) {
	n.sinkMu.RLock()
	defer n.sinkMu.RUnlock()
	if n.sink != nil {
		n.sink(d)
		return
	}
	n.recvq.Push(d)
}

// SetSink implements DirectNode: deliveries from every sub-fabric are
// handed to fn on the transport goroutine that produced them, with the
// combined rail index. Installing a sink drains the queued deliveries
// first, atomically with the handoff.
func (n *mixNode) SetSink(fn func(*Delivery)) {
	n.mustHost()
	n.sinkMu.Lock()
	defer n.sinkMu.Unlock()
	n.sink = fn
	if fn == nil {
		return
	}
	for {
		item, ok := n.recvq.TryPop()
		if !ok {
			return
		}
		if d, isD := item.(*Delivery); isD && d != nil {
			fn(d)
		}
	}
}

// SetTelemetry implements ObservableNode by fanning the sink out to
// every sub-node that reports transfers, remapping the rail index.
func (n *mixNode) SetTelemetry(t Telemetry) {
	n.mustHost()
	for k, s := range n.m.subs {
		on, ok := s.Node(n.id).(ObservableNode)
		if !ok {
			continue
		}
		if t == nil {
			on.SetTelemetry(nil)
			continue
		}
		on.SetTelemetry(&offsetTelemetry{t: t, off: n.m.offsets[k]})
	}
}

// offsetTelemetry shifts a sub-fabric's rail indices into the combined
// space before reporting.
type offsetTelemetry struct {
	t   Telemetry
	off int
}

func (o *offsetTelemetry) ObserveTransfer(peer, rail, bytes int, d time.Duration) {
	o.t.ObserveTransfer(peer, rail+o.off, bytes, d)
}

// ID returns the node's index.
func (n *mixNode) ID() int { return n.id }

// NumRails returns the combined rail count.
func (n *mixNode) NumRails() int { return n.m.total }

// Rail returns the i-th combined rail.
func (n *mixNode) Rail(i int) Rail {
	n.mustHost()
	sub, r := n.m.SubFor(i)
	return mixRail{Rail: sub.Node(n.id).Rail(r), idx: i}
}

// RecvQ returns the combined delivery queue.
func (n *mixNode) RecvQ() rt.Queue {
	n.mustHost()
	return n.recvq
}

// Health returns the merged rail-health surface.
func (n *mixNode) Health() Health {
	n.mustHost()
	return n.health
}

// Cores returns the largest core count any sub-fabric reports.
func (n *mixNode) Cores() int {
	cores := 0
	for _, s := range n.m.subs {
		if c := s.Node(n.id).Cores(); c > cores {
			cores = c
		}
	}
	return cores
}

func (n *mixNode) mustHost() {
	if !n.hosted {
		panic(fmt.Sprintf("fabric: mix node %d is not hosted by this process", n.id))
	}
}

// mixRail presents a sub-fabric rail under its combined index.
type mixRail struct {
	Rail
	idx int
}

func (r mixRail) Index() int { return r.idx }

// mixHealth merges the sub-fabrics' health trackers into one surface:
// states and events carry combined rail indices, and administrative
// control dispatches to the owning tracker.
type mixHealth struct {
	m    *Mix
	node int

	mu   sync.Mutex
	subs []rt.Queue // merged subscriber queues
}

// newMixHealth builds the merged surface for one hosted node and spawns
// one forwarding actor per sub-tracker: each pops the sub-tracker's
// transition feed, remaps the rail index, and republishes to every
// merged subscriber in order.
func (m *Mix) newMixHealth(node int) *mixHealth {
	h := &mixHealth{m: m, node: node}
	for k, s := range m.subs {
		off := m.offsets[k]
		q := s.Node(node).Health().Subscribe()
		m.stopsMu.Lock()
		m.stopQs = append(m.stopQs, q)
		m.stopsMu.Unlock()
		m.env.Go(fmt.Sprintf("mix-health-%d-%d", node, k), func(ctx rt.Ctx) {
			for {
				item := q.Pop(ctx)
				if item == nil {
					return
				}
				ev := *(item.(*RailEvent))
				ev.Rail += off
				h.publish(&ev)
			}
		})
	}
	return h
}

func (h *mixHealth) publish(ev *RailEvent) {
	h.mu.Lock()
	subs := append([]rt.Queue(nil), h.subs...)
	h.mu.Unlock()
	for _, q := range subs {
		q.Push(ev)
	}
}

// State returns the current state of one combined rail.
func (h *mixHealth) State(rail int) RailState {
	sub, r := h.m.SubFor(rail)
	return sub.Node(h.node).Health().State(r)
}

// States concatenates every sub-tracker's snapshot in rail order.
func (h *mixHealth) States() []RailState {
	out := make([]RailState, 0, h.m.total)
	for _, s := range h.m.subs {
		out = append(out, s.Node(h.node).Health().States()...)
	}
	return out
}

// Subscribe returns a fresh queue receiving every sub-tracker's
// transitions with combined rail indices.
func (h *mixHealth) Subscribe() rt.Queue {
	q := h.m.env.NewQueue()
	h.mu.Lock()
	h.subs = append(h.subs, q)
	h.mu.Unlock()
	return q
}

// Disable administratively forces the rail Down in its owning tracker.
func (h *mixHealth) Disable(rail int, reason string) {
	sub, r := h.m.SubFor(rail)
	sub.Node(h.node).Health().Disable(r, reason)
}

// Enable lifts an administrative Disable in the owning tracker.
func (h *mixHealth) Enable(rail int) {
	sub, r := h.m.SubFor(rail)
	sub.Node(h.node).Health().Enable(r)
}

var (
	_ Fabric         = (*Mix)(nil)
	_ Throttler      = (*Mix)(nil)
	_ Node           = (*mixNode)(nil)
	_ DirectNode     = (*mixNode)(nil)
	_ ObservableNode = (*mixNode)(nil)
)
