// Package fabric defines the contract between the communication engine
// (internal/core, the optimizer–scheduler of the paper) and the
// byte-moving substrate underneath it.
//
// The engine schedules transfers; a fabric executes them. Two fabrics
// implement this contract:
//
//   - internal/simnet: the modeled multirail cluster driven by analytic
//     NIC profiles, deterministic on rt.SimEnv (reproduces the paper's
//     testbed) and optionally paced on rt.LiveEnv.
//   - internal/livenet: real TCP connections — one per (node pair, rail)
//     — moving internal/wire frames as actual bytes on the wall clock.
//
// The split mirrors the paper's own layering (NewMadeleine's
// optimizer/scheduler above, Madeleine's network drivers below): the
// scheduler only ever asks a rail "when will you be idle?", posts eager
// containers, control messages and DMA chunks, and consumes Delivery
// items from the node's receive queue. Nothing in the engine may depend
// on how the bytes actually travel.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/rt"
)

// Delivery is a message arriving at a node: one internal/wire frame plus
// the receiver-side cost annotations charged by the progression engine.
type Delivery struct {
	// From is the sending node.
	From int
	// Rail is the rail index the message travelled on.
	Rail int
	// Data is the encoded wire frame.
	Data []byte
	// RecvCPU is the fixed receiver-core cost to process the delivery
	// before the engine handler runs (and before completion can fire).
	// Live fabrics report zero: real receive costs elapse on their own.
	RecvCPU time.Duration
	// CopyCPU is additional receiver-core occupancy (the eager receive
	// copy), charged after the handler to model core contention.
	CopyCPU time.Duration
	// SentAt is the fabric time the message was posted (tracing).
	SentAt time.Duration
}

// Stats aggregates per-rail traffic counters.
type Stats struct {
	Messages  uint64
	Bytes     uint64
	BusyTime  time.Duration
	LastStart time.Duration
	// Reconnects counts link re-establishments on the rail (livenet: a
	// replacement connection registered over a dead one). Zero on
	// fabrics without reconnection.
	Reconnects uint64
	// Stalls counts backpressure episodes (shmnet: a ring write that
	// found the ring full and had to wait). Zero on fabrics without
	// bounded rings.
	Stalls uint64
}

// RailState is the health of one rail. Rails are a dynamic set: a NIC
// can die mid-message (livenet: broken TCP connection; simnet: injected
// fault) or be unplugged deliberately. The engine excludes non-Up rails
// from scheduling decisions and re-plans unacknowledged transfer units
// when a rail goes Down.
type RailState int

const (
	// RailUp: the rail is believed healthy and schedulable.
	RailUp RailState = iota
	// RailSuspect: a transport fault was observed and recovery (bounded
	// reconnect) is being attempted. No new work is scheduled on it, but
	// in-flight transfers are not yet re-planned.
	RailSuspect
	// RailDown: the rail is dead (recovery exhausted, fault injected, or
	// administratively disabled). Outstanding work is re-planned onto
	// surviving rails.
	RailDown
)

func (s RailState) String() string {
	switch s {
	case RailUp:
		return "up"
	case RailSuspect:
		return "suspect"
	case RailDown:
		return "down"
	default:
		return fmt.Sprintf("RailState(%d)", int(s))
	}
}

// RailEvent is one rail state transition, delivered to Health
// subscribers in transition order.
type RailEvent struct {
	// Node is the node whose rail changed.
	Node int
	// Rail is the rail index.
	Rail int
	// State is the new state.
	State RailState
	// At is the fabric time of the transition.
	At time.Duration
	// Reason describes the cause ("connection lost", "fault injection",
	// "admin", "reconnected", ...).
	Reason string
}

// Health is a node's rail-health surface: per-rail state, a state-change
// notification feed, and administrative control for planned hot-unplug.
// Implemented by internal/railhealth.Tracker for both fabrics.
type Health interface {
	// State returns the current state of one rail.
	State(rail int) RailState
	// States returns a snapshot of every rail's state.
	States() []RailState
	// Subscribe returns a fresh queue that receives a *RailEvent for
	// every subsequent state transition. Each subscriber owns its queue
	// (single consumer); push nil yourself as a stop nudge when the
	// consuming actor should exit.
	Subscribe() rt.Queue
	// Disable administratively forces the rail Down (planned hot-unplug).
	// Transport-level recovery cannot bring it back; Enable can.
	Disable(rail int, reason string)
	// Enable lifts an administrative Disable (and, on fabrics that can,
	// triggers reconnection of dead links). The rail returns to Up.
	Enable(rail int)
}

// Rail is one NIC (or one TCP lane): a serialised send engine with a
// performance profile and an idleness horizon.
type Rail interface {
	// Index returns the rail number within its node.
	Index() int
	// Profile returns the rail's performance description. For modeled
	// rails this is the calibrated analytic profile; live rails return a
	// synthetic profile whose cost fields are zero (real costs elapse on
	// the wall clock) but whose limits (EagerMax) still bind.
	Profile() *model.Profile
	// IdleAt predicts when the rail's send engine will have drained all
	// posted work: now if idle, otherwise the expected end of the queued
	// transfers. This is the knowledge Fig 2's NIC selection relies on.
	IdleAt() time.Duration
	// Busy reports whether the send engine currently has work.
	Busy() bool
	// State returns the rail's current health state. Strategies must not
	// place new work on non-Up rails.
	State() RailState
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
	// SendEager transmits an eager (PIO) container. It may block the
	// calling actor for the host-side cost; the payload is aliased until
	// the message is handed to the wire.
	SendEager(ctx rt.Ctx, to int, data []byte)
	// SendControl transmits a small control message (RTS/CTS/Ack),
	// charging the caller cpuCost and annotating the delivery with
	// recvCost. Fabrics without modeled CPU costs ignore both.
	SendControl(ctx rt.Ctx, to int, data []byte, cpuCost, recvCost time.Duration)
	// SendData streams a rendezvous chunk. The calling actor is blocked
	// only for the descriptor post; done (may be nil) fires when the
	// transfer drains and the sender may reuse the buffer.
	SendData(ctx rt.Ctx, to int, data []byte, done rt.Event)
}

// Node is one endpoint of the fabric: an indexed set of rails plus the
// delivery queue the progression engine (internal/pioman) drains.
type Node interface {
	// ID returns the node's index in the fabric.
	ID() int
	// NumRails returns the number of rails of this node.
	NumRails() int
	// Rail returns the i-th rail.
	Rail(i int) Rail
	// RecvQ returns the queue *Delivery items are pushed to. A nil item
	// is the conventional stop nudge for parked consumers.
	RecvQ() rt.Queue
	// Health returns the node's rail-health surface.
	Health() Health
	// Cores returns the number of cores the node exposes to the
	// communication system.
	Cores() int
}

// Telemetry receives per-transfer measurements from a fabric's
// transport layer: one call per completed wire transfer, carrying the
// peer, the rail, the bytes moved and the observed duration (a real
// write time on live fabrics; the modeled occupancy plus wire latency
// on simulated ones). Implemented by internal/telemetry.Tracker. Calls
// arrive on transport goroutines (or simulated NIC actors) and must not
// block.
type Telemetry interface {
	ObserveTransfer(peer, rail, bytes int, d time.Duration)
}

// ObservableNode is an optional interface a fabric node may implement
// to feed a Telemetry sink from its transfer layer. SetTelemetry(nil)
// detaches the sink. Both simnet and livenet nodes implement it.
type ObservableNode interface {
	SetTelemetry(Telemetry)
}

// Throttler is an optional interface a fabric may implement to slow a
// rail artificially: factor > 1 multiplies the rail's effective
// transfer cost (10 = ten times slower), factor <= 1 removes the
// throttle. It is the chaos hook the adaptive-telemetry tests use to
// congest a rail without killing it — the rail stays Up, only its
// observed performance degrades, which is exactly what the drift
// detector must notice.
type Throttler interface {
	ThrottleRail(rail int, factor float64)
}

// DirectNode is an optional interface a fabric node may implement to
// hand deliveries straight to a consumer on the transport goroutine
// that produced them, bypassing RecvQ. The multicore progression
// subsystem uses it so livenet's per-connection readers feed the
// engine's worker pool directly instead of funnelling every delivery
// through one queue and one progression actor. The sink must not block:
// it classifies the delivery and enqueues the engine work elsewhere.
// Installing a sink atomically drains deliveries already sitting in
// RecvQ through it, in order, before any later delivery is handed over
// — a distributed peer may have started sending before the consumer
// existed. SetSink(nil) restores queue delivery.
type DirectNode interface {
	SetSink(fn func(*Delivery))
}

// Fabric is a set of nodes joined by parallel rails.
type Fabric interface {
	// Env returns the execution environment the fabric runs on.
	Env() rt.Env
	// NumNodes returns the number of nodes.
	NumNodes() int
	// Node returns node i. Fabrics that host only part of a distributed
	// system return a remote stub for non-hosted nodes; stubs expose ID
	// only and panic on any transfer or queue access.
	Node(i int) Node
	// NumRails returns the number of rails joining every node pair.
	NumRails() int
	// Close releases transport resources (listeners, connections). It is
	// a no-op for purely in-memory fabrics.
	Close() error
}
